//! Parsing GEL sentences into skill calls.
//!
//! GEL is deliberately template-shaped (§2.1: skills are "invoked through
//! simple UI gestures" or typed with autocomplete), so the parser is a
//! set of case-insensitive sentence templates with typed holes. Condition
//! phrases accept both English sugar ("DATE is between the dates
//! 01-01-2005 to 12-31-2020", "DATE is after Today - 10 years") and SQL
//! fragments, which is also what the formatter emits.

use dc_engine::date::{add_months, add_years, days_from_ymd, parse_date};
use dc_engine::{AggFunc, AggSpec, Expr, JoinType, Value};
use dc_ml::{MlMethod, OutlierMethod};
use dc_skills::SkillCall;
use dc_viz::ChartType;

use crate::error::{GelError, Result};
use crate::format::{parse_date_part, parse_dtype};

/// The fixed "Today" used when resolving relative dates, keeping recipe
/// replay deterministic (the paper's Figure 2 recipe says "Today - 10
/// years"; a replayable reproduction needs a pinned clock).
pub const GEL_TODAY: (i64, u32, u32) = (2023, 6, 1);

fn today_days() -> i32 {
    days_from_ymd(GEL_TODAY.0, GEL_TODAY.1, GEL_TODAY.2)
}

/// Strip a case-insensitive prefix, also eating following whitespace.
fn strip_ci<'a>(s: &'a str, prefix: &str) -> Option<&'a str> {
    if s.len() >= prefix.len() && s[..prefix.len()].eq_ignore_ascii_case(prefix) {
        Some(s[prefix.len()..].trim_start())
    } else {
        None
    }
}

/// Find the first case-insensitive, word-bounded occurrence of `word`
/// and split around it.
fn split_word_ci<'a>(s: &'a str, word: &str) -> Option<(&'a str, &'a str)> {
    let lower = s.to_lowercase();
    let target = word.to_lowercase();
    let mut start = 0;
    while let Some(pos) = lower[start..].find(&target) {
        let at = start + pos;
        let before_ok = at == 0
            || lower.as_bytes()[at - 1].is_ascii_whitespace()
            || lower.as_bytes()[at - 1] == b',';
        let end = at + target.len();
        let after_ok = end == lower.len()
            || lower.as_bytes()[end].is_ascii_whitespace()
            || lower.as_bytes()[end] == b',';
        if before_ok && after_ok {
            return Some((
                s[..at].trim_end().trim_end_matches(','),
                s[end..].trim_start(),
            ));
        }
        start = at + 1;
    }
    None
}

/// Like [`split_word_ci`] but the *last* occurrence.
fn rsplit_word_ci<'a>(s: &'a str, word: &str) -> Option<(&'a str, &'a str)> {
    let lower = s.to_lowercase();
    let target = word.to_lowercase();
    let mut best = None;
    let mut start = 0;
    while let Some(pos) = lower[start..].find(&target) {
        let at = start + pos;
        let before_ok = at == 0 || lower.as_bytes()[at - 1].is_ascii_whitespace();
        let end = at + target.len();
        let after_ok = end == lower.len() || lower.as_bytes()[end].is_ascii_whitespace();
        if before_ok && after_ok {
            best = Some(at);
        }
        start = at + 1;
    }
    best.map(|at| (s[..at].trim_end(), s[at + target.len()..].trim_start()))
}

/// Split a GEL column/name list: commas and a final "and".
pub fn parse_list(s: &str) -> Vec<String> {
    let mut items: Vec<String> = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        // A trailing "x and y" inside the final comma group.
        if let Some((a, b)) = split_word_ci(part, "and") {
            if !a.is_empty() {
                items.push(a.trim().to_string());
            }
            if !b.is_empty() {
                items.push(b.trim().to_string());
            }
        } else {
            items.push(part.to_string());
        }
    }
    items
}

/// Parse a GEL value token: quoted string, number, date, bool, null, or a
/// bare word-sequence string.
pub fn parse_value(s: &str) -> Value {
    let s = s.trim();
    if s.eq_ignore_ascii_case("null") {
        return Value::Null;
    }
    if s.eq_ignore_ascii_case("true") {
        return Value::Bool(true);
    }
    if s.eq_ignore_ascii_case("false") {
        return Value::Bool(false);
    }
    if let Some(inner) = s.strip_prefix('\'').and_then(|r| r.strip_suffix('\'')) {
        return Value::Str(inner.replace("''", "'"));
    }
    if let Some(inner) = s.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        return Value::Str(inner.to_string());
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Value::Float(f);
    }
    if let Ok(d) = parse_date(s) {
        return Value::Date(d);
    }
    Value::Str(s.to_string())
}

/// Parse a date phrase: a literal date or `Today [- N years|months|days]`.
fn parse_date_phrase(s: &str) -> Result<i32> {
    let s = s.trim();
    if let Some(rest) = strip_ci(s, "today") {
        let rest = rest.trim();
        if rest.is_empty() {
            return Ok(today_days());
        }
        let (sign, rest) = if let Some(r) = rest.strip_prefix('-') {
            (-1i32, r.trim())
        } else if let Some(r) = rest.strip_prefix('+') {
            (1i32, r.trim())
        } else {
            return Err(GelError::bad_phrase("expected +/- offset after Today", s));
        };
        let mut parts = rest.split_whitespace();
        let n: i32 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| GelError::bad_phrase("expected a number", rest))?;
        let unit = parts.next().unwrap_or("days").to_lowercase();
        let base = today_days();
        return Ok(match unit.trim_end_matches('s') {
            "year" => add_years(base, sign * n),
            "month" => add_months(base, sign * n),
            "day" => base + sign * n,
            other => return Err(GelError::bad_phrase(format!("unknown unit {other:?}"), s)),
        });
    }
    parse_date(s).map_err(|e| GelError::bad_phrase(e.to_string(), s))
}

/// Parse a GEL condition phrase into a predicate expression.
pub fn parse_condition(s: &str) -> Result<Expr> {
    let s = s.trim();
    // "<col> is between the dates <a> to <b>"
    if let Some((col, rest)) = split_word_ci(s, "is between the dates") {
        let (a, b) = split_word_ci(rest, "to")
            .or_else(|| split_word_ci(rest, "and"))
            .ok_or_else(|| GelError::bad_phrase("expected <a> to <b>", rest))?;
        return Ok(Expr::col(col).between(
            Expr::Literal(Value::Date(parse_date_phrase(a)?)),
            Expr::Literal(Value::Date(parse_date_phrase(b)?)),
        ));
    }
    // "<col> is between <a> and <b>"
    if let Some((col, rest)) = split_word_ci(s, "is between") {
        let (a, b) = split_word_ci(rest, "and")
            .ok_or_else(|| GelError::bad_phrase("expected <a> and <b>", rest))?;
        return Ok(
            Expr::col(col).between(Expr::Literal(parse_value(a)), Expr::Literal(parse_value(b)))
        );
    }
    // "<col> is after/before <date-phrase>"
    if let Some((col, rest)) = split_word_ci(s, "is after") {
        return Ok(Expr::col(col).gt(Expr::Literal(Value::Date(parse_date_phrase(rest)?))));
    }
    if let Some((col, rest)) = split_word_ci(s, "is before") {
        return Ok(Expr::col(col).lt(Expr::Literal(Value::Date(parse_date_phrase(rest)?))));
    }
    // null checks
    if let Some((col, rest)) = split_word_ci(s, "is not") {
        if rest.eq_ignore_ascii_case("null") {
            return Ok(Expr::col(col).is_not_null());
        }
        return Ok(Expr::col(col).neq(Expr::Literal(parse_value(rest))));
    }
    if let Some((col, rest)) = split_word_ci(s, "is") {
        if rest.eq_ignore_ascii_case("null") {
            return Ok(Expr::col(col).is_null());
        }
        return Ok(Expr::col(col).eq(Expr::Literal(parse_value(rest))));
    }
    if let Some((col, rest)) = split_word_ci(s, "contains") {
        return Ok(Expr::func(
            dc_engine::ScalarFunc::Contains,
            vec![Expr::col(col), Expr::Literal(parse_value(rest))],
        ));
    }
    if let Some((col, rest)) = split_word_ci(s, "starts with") {
        return Ok(Expr::func(
            dc_engine::ScalarFunc::StartsWith,
            vec![Expr::col(col), Expr::Literal(parse_value(rest))],
        ));
    }
    // Fall back to the SQL expression grammar.
    dc_sql::parse_expr(s).map_err(|e| GelError::bad_phrase(e.to_string(), s))
}

fn parse_usize(s: &str, what: &str) -> Result<usize> {
    s.trim()
        .parse()
        .map_err(|_| GelError::bad_phrase(format!("expected a number for {what}"), s))
}

/// Parse one aggregate phrase: "the count of case_id", "the count of
/// records", "the average of Age".
fn parse_agg_phrase(s: &str) -> Result<(AggFunc, Option<String>)> {
    let s = strip_ci(s, "the").unwrap_or(s);
    if s.eq_ignore_ascii_case("count of records") {
        return Ok((AggFunc::CountRecords, None));
    }
    let (fname, col) = rsplit_word_ci(s, "of")
        .ok_or_else(|| GelError::bad_phrase("expected <aggregate> of <column>", s))?;
    if col.eq_ignore_ascii_case("records") {
        return Ok((AggFunc::CountRecords, None));
    }
    let func = AggFunc::from_name(fname)
        .ok_or_else(|| GelError::bad_phrase(format!("unknown aggregate {fname:?}"), s))?;
    Ok((func, Some(col.to_string())))
}

fn chart_from_name(name: &str) -> Option<ChartType> {
    match name.to_ascii_lowercase().as_str() {
        "line" => Some(ChartType::Line),
        "bar" => Some(ChartType::Bar),
        "scatter" => Some(ChartType::Scatter),
        "bubble" => Some(ChartType::Bubble),
        "histogram" => Some(ChartType::Histogram),
        "donut" | "pie" => Some(ChartType::Donut),
        "box" => Some(ChartType::Box),
        "violin" => Some(ChartType::Violin),
        "heatmap" => Some(ChartType::Heatmap),
        _ => None,
    }
}

/// Parse one GEL sentence into a skill call.
pub fn parse_gel(sentence: &str) -> Result<SkillCall> {
    let s = sentence.trim().trim_end_matches('.');
    if s.is_empty() {
        return Err(GelError::UnknownSentence {
            sentence: sentence.to_string(),
        });
    }

    // ----- ingestion -----
    if let Some(rest) = strip_ci(s, "load data from the file") {
        return Ok(SkillCall::LoadFile { path: rest.into() });
    }
    if let Some(rest) = strip_ci(s, "load data from the url") {
        return Ok(SkillCall::LoadUrl { url: rest.into() });
    }
    if let Some(rest) = strip_ci(s, "load the columns") {
        let (cols, rest) = split_word_ci(rest, "of the table")
            .ok_or_else(|| GelError::bad_phrase("expected of the table <table>", rest))?;
        let (table, db) = split_word_ci(rest, "from the database")
            .ok_or_else(|| GelError::bad_phrase("expected from the database <db>", rest))?;
        let columns = parse_list(cols);
        if let Some((db, cond)) = split_word_ci(db, "where") {
            return Ok(SkillCall::LoadTableProjected {
                database: db.into(),
                table: table.into(),
                columns,
                predicate: Some(parse_condition(cond)?),
            });
        }
        return Ok(SkillCall::LoadTableProjected {
            database: db.into(),
            table: table.into(),
            columns,
            predicate: None,
        });
    }
    if let Some(rest) = strip_ci(s, "load the table") {
        let (table, db) = split_word_ci(rest, "from the database")
            .ok_or_else(|| GelError::bad_phrase("expected from the database <db>", rest))?;
        // Optional pushed-down filter: "... where <condition>".
        if let Some((db, cond)) = split_word_ci(db, "where") {
            return Ok(SkillCall::LoadTableFiltered {
                database: db.into(),
                table: table.into(),
                predicate: parse_condition(cond)?,
            });
        }
        return Ok(SkillCall::LoadTable {
            database: db.into(),
            table: table.into(),
        });
    }
    if let Some(rest) = strip_ci(s, "use the dataset") {
        if let Some((name, v)) = split_word_ci(rest, "version") {
            let name = name.trim_end_matches(',').trim();
            return Ok(SkillCall::UseDataset {
                name: name.into(),
                version: Some(
                    v.trim()
                        .parse()
                        .map_err(|_| GelError::bad_phrase("expected a version number", v))?,
                ),
            });
        }
        return Ok(SkillCall::UseDataset {
            name: rest.into(),
            version: None,
        });
    }
    if let Some(rest) = strip_ci(s, "use the snapshot") {
        return Ok(SkillCall::UseSnapshot { name: rest.into() });
    }

    // ----- exploration -----
    if let Some(rest) = strip_ci(s, "describe the column") {
        return Ok(SkillCall::DescribeColumn {
            column: rest.into(),
        });
    }
    if strip_ci(s, "describe the dataset").is_some_and(|r| r.is_empty()) {
        return Ok(SkillCall::DescribeDataset);
    }
    if strip_ci(s, "list the datasets").is_some_and(|r| r.is_empty()) {
        return Ok(SkillCall::ListDatasets);
    }
    if let Some(rest) = strip_ci(s, "show the first") {
        let n = rest.trim_end_matches("rows").trim_end_matches("row").trim();
        return Ok(SkillCall::ShowHead {
            n: parse_usize(n, "row count")?,
        });
    }
    if strip_ci(s, "count the rows").is_some_and(|r| r.is_empty()) {
        return Ok(SkillCall::CountRows);
    }
    if strip_ci(s, "profile the missing values").is_some_and(|r| r.is_empty()) {
        return Ok(SkillCall::ProfileMissing);
    }

    // ----- visualization -----
    if let Some(rest) = strip_ci(s, "visualize") {
        // Visualize with a filter clause belongs to the §4.8 phrase layer
        // (it needs the semantic layer); plain GEL declines it.
        if split_word_ci(rest, "where").is_some() {
            return Err(GelError::UnknownSentence {
                sentence: sentence.to_string(),
            });
        }
        if let Some((kpi, by)) = split_word_ci(rest, "by").or_else(|| split_word_ci(rest, "using"))
        {
            return Ok(SkillCall::Visualize {
                kpi: kpi.into(),
                by: parse_list(by),
            });
        }
        return Ok(SkillCall::Visualize {
            kpi: rest.into(),
            by: vec![],
        });
    }
    if let Some(rest) = strip_ci(s, "plot a") {
        let (chart_name, rest) = rest
            .split_once(' ')
            .ok_or_else(|| GelError::bad_phrase("expected a chart type", rest))?;
        let chart = chart_from_name(chart_name)
            .ok_or_else(|| GelError::bad_phrase(format!("unknown chart {chart_name:?}"), s))?;
        let rest = strip_ci(rest, "chart").unwrap_or(rest);
        let mut x = None;
        let mut y = None;
        let mut color = None;
        let mut size = None;
        let mut for_each = None;
        let body = strip_ci(rest, "with").unwrap_or(rest);
        for clause in body.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(v) = strip_ci(clause, "the x-axis") {
                x = Some(v.to_string());
            } else if let Some(v) = strip_ci(clause, "the y-axis") {
                y = Some(v.to_string());
            } else if let Some(v) = strip_ci(clause, "colored by") {
                color = Some(v.to_string());
            } else if let Some(v) = strip_ci(clause, "colored using:") {
                color = Some(v.to_string());
            } else if let Some(v) = strip_ci(clause, "sized by") {
                size = Some(v.to_string());
            } else if let Some(v) = strip_ci(clause, "sized using:") {
                size = Some(v.to_string());
            } else if let Some(v) = strip_ci(clause, "for each") {
                for_each = Some(v.to_string());
            } else {
                return Err(GelError::bad_phrase("unknown plot clause", clause));
            }
        }
        return Ok(SkillCall::Plot {
            chart,
            x,
            y,
            color,
            size,
            for_each,
        });
    }

    // ----- wrangling -----
    if let Some(rest) = strip_ci(s, "keep the rows where") {
        return Ok(SkillCall::KeepRows {
            predicate: parse_condition(rest)?,
        });
    }
    if let Some(rest) = strip_ci(s, "drop the rows with missing") {
        let columns = if rest.eq_ignore_ascii_case("values") {
            vec![]
        } else {
            parse_list(rest)
        };
        return Ok(SkillCall::DropMissing { columns });
    }
    if let Some(rest) = strip_ci(s, "drop the rows where") {
        return Ok(SkillCall::DropRows {
            predicate: parse_condition(rest)?,
        });
    }
    if let Some(rest) = strip_ci(s, "keep the columns") {
        return Ok(SkillCall::KeepColumns {
            columns: parse_list(rest),
        });
    }
    if let Some(rest) = strip_ci(s, "drop the columns") {
        return Ok(SkillCall::DropColumns {
            columns: parse_list(rest),
        });
    }
    if let Some(rest) = strip_ci(s, "rename the column") {
        let (from, to) = split_word_ci(rest, "to")
            .ok_or_else(|| GelError::bad_phrase("expected <from> to <to>", rest))?;
        return Ok(SkillCall::RenameColumn {
            from: from.into(),
            to: to.into(),
        });
    }
    if let Some(rest) = strip_ci(s, "create a new column") {
        if let Some((name, value)) = split_word_ci(rest, "with text") {
            return Ok(SkillCall::CreateConstantColumn {
                name: name.into(),
                value: Value::Str(match parse_value(value) {
                    Value::Str(v) => v,
                    other => other.render(),
                }),
            });
        }
        if let Some((name, value)) = split_word_ci(rest, "with value") {
            return Ok(SkillCall::CreateConstantColumn {
                name: name.into(),
                value: parse_value(value),
            });
        }
        if let Some((name, expr)) = split_word_ci(rest, "as") {
            return Ok(SkillCall::CreateColumn {
                name: name.into(),
                expr: dc_sql::parse_expr(expr)
                    .map_err(|e| GelError::bad_phrase(e.to_string(), expr))?,
            });
        }
        return Err(GelError::bad_phrase(
            "expected `as <expression>`, `with text <value>` or `with value <value>`",
            rest,
        ));
    }
    if let Some(rest) = strip_ci(s, "compute") {
        // [the] <agg> of <col> [and <agg> of <col>]* [for each <keys>]
        // [and call the computed columns <names>]
        let (body, names) = match split_word_ci(rest, "and call the computed columns") {
            Some((b, n)) => (b, Some(parse_list(n))),
            None => (rest, None),
        };
        let (agg_part, keys) = match split_word_ci(body, "for each") {
            Some((a, k)) => (a, parse_list(k)),
            None => (body, vec![]),
        };
        // Split aggregates on " and ".
        let mut agg_phrases: Vec<&str> = Vec::new();
        let mut remaining = agg_part;
        while let Some((a, b)) = split_word_ci(remaining, "and") {
            agg_phrases.push(a);
            remaining = b;
        }
        agg_phrases.push(remaining);
        let mut aggs = Vec::new();
        for (i, phrase) in agg_phrases.iter().enumerate() {
            let (func, column) = parse_agg_phrase(phrase)?;
            let output = match &names {
                Some(ns) => ns
                    .get(i)
                    .cloned()
                    .ok_or_else(|| GelError::bad_phrase("not enough output names", *phrase))?,
                None => AggSpec::default_output(func, column.as_deref()),
            };
            aggs.push(AggSpec {
                func,
                column,
                output,
            });
        }
        return Ok(SkillCall::Compute {
            aggs,
            for_each: keys,
        });
    }
    if let Some(rest) = strip_ci(s, "pivot on") {
        let (index, rest) = split_word_ci(rest, "by")
            .ok_or_else(|| GelError::bad_phrase("expected by <columns>", rest))?;
        let (columns, rest) = split_word_ci(rest, "using")
            .ok_or_else(|| GelError::bad_phrase("expected using the <agg> of <values>", rest))?;
        let (func, values) = parse_agg_phrase(rest)?;
        let values =
            values.ok_or_else(|| GelError::bad_phrase("pivot needs a values column", rest))?;
        return Ok(SkillCall::Pivot {
            index: index.into(),
            columns: columns.into(),
            values,
            agg: func,
        });
    }
    if let Some(rest) = strip_ci(s, "sort by") {
        let keys = parse_list(rest)
            .into_iter()
            .map(|item| {
                if let Some(col) = item
                    .to_lowercase()
                    .strip_suffix(" descending")
                    .map(|_| item[..item.len() - " descending".len()].to_string())
                {
                    (col, false)
                } else if let Some(col) = item
                    .to_lowercase()
                    .strip_suffix(" desc")
                    .map(|_| item[..item.len() - " desc".len()].to_string())
                {
                    (col, false)
                } else if let Some(col) = item
                    .to_lowercase()
                    .strip_suffix(" ascending")
                    .map(|_| item[..item.len() - " ascending".len()].to_string())
                {
                    (col, true)
                } else {
                    (item, true)
                }
            })
            .collect();
        return Ok(SkillCall::Sort { keys });
    }
    if let Some(rest) = strip_ci(s, "keep the top") {
        let (n, col) = split_word_ci(rest, "rows by")
            .ok_or_else(|| GelError::bad_phrase("expected <n> rows by <column>", rest))?;
        return Ok(SkillCall::Top {
            column: col.into(),
            n: parse_usize(n, "row count")?,
        });
    }
    if let Some(rest) = strip_ci(s, "keep the first") {
        let n = rest.trim_end_matches("rows").trim_end_matches("row").trim();
        return Ok(SkillCall::Limit {
            n: parse_usize(n, "row count")?,
        });
    }
    if let Some(rest) = strip_ci(s, "concatenate the datasets") {
        // Paper form: "Concatenate the datasets A and B [remove all
        // duplicates]" — the first dataset is the session's current one.
        let (body, dedupe) = match split_word_ci(rest, "remove all duplicates") {
            Some((b, _)) => (b, true),
            None => (rest, false),
        };
        let names = parse_list(body);
        let other = names
            .last()
            .cloned()
            .ok_or_else(|| GelError::bad_phrase("expected dataset names", rest))?;
        return Ok(SkillCall::Concat {
            other,
            remove_duplicates: dedupe,
        });
    }
    if let Some(rest) = strip_ci(s, "concatenate with the dataset") {
        let (body, dedupe) = match split_word_ci(rest, "remove all duplicates") {
            Some((b, _)) => (b, true),
            None => (rest, false),
        };
        return Ok(SkillCall::Concat {
            other: body.trim().into(),
            remove_duplicates: dedupe,
        });
    }
    if let Some(rest) = strip_ci(s, "join with the dataset") {
        let (other, rest) = split_word_ci(rest, "on")
            .ok_or_else(|| GelError::bad_phrase("expected on <columns>", rest))?;
        let (on_part, how) = if let Some((o, _)) = split_word_ci(rest, "as a left join") {
            (o, JoinType::Left)
        } else if let Some((o, _)) = split_word_ci(rest, "as a right join") {
            (o, JoinType::Right)
        } else if let Some((o, _)) = split_word_ci(rest, "as a full join") {
            (o, JoinType::Full)
        } else {
            (rest, JoinType::Inner)
        };
        let mut left_on = Vec::new();
        let mut right_on = Vec::new();
        for pair in parse_list(on_part) {
            match pair.split_once('=') {
                Some((l, r)) => {
                    left_on.push(l.trim().to_string());
                    right_on.push(r.trim().to_string());
                }
                None => {
                    left_on.push(pair.clone());
                    right_on.push(pair);
                }
            }
        }
        return Ok(SkillCall::Join {
            other: other.into(),
            left_on,
            right_on,
            how,
        });
    }
    if let Some(rest) = strip_ci(s, "remove duplicate rows") {
        if let Some(cols) = strip_ci(rest, "based on") {
            return Ok(SkillCall::Distinct {
                columns: parse_list(cols),
            });
        }
        if rest.is_empty() {
            return Ok(SkillCall::Distinct { columns: vec![] });
        }
    }
    if let Some(rest) = strip_ci(s, "fill the missing values of") {
        let (col, value) = split_word_ci(rest, "with")
            .ok_or_else(|| GelError::bad_phrase("expected with <value>", rest))?;
        return Ok(SkillCall::FillMissing {
            column: col.into(),
            value: parse_value(value),
        });
    }
    if let Some(rest) = strip_ci(s, "replace") {
        let (from, rest2) = split_word_ci(rest, "with")
            .ok_or_else(|| GelError::bad_phrase("expected with <value>", rest))?;
        let (to, col) = split_word_ci(rest2, "in the column")
            .ok_or_else(|| GelError::bad_phrase("expected in the column <column>", rest2))?;
        return Ok(SkillCall::ReplaceValues {
            column: col.into(),
            from: parse_value(from),
            to: parse_value(to),
        });
    }
    if let Some(rest) = strip_ci(s, "change the type of") {
        let (col, ty) = split_word_ci(rest, "to")
            .ok_or_else(|| GelError::bad_phrase("expected to <type>", rest))?;
        let to = parse_dtype(ty)
            .ok_or_else(|| GelError::bad_phrase(format!("unknown type {ty:?}"), s))?;
        return Ok(SkillCall::CastColumn {
            column: col.into(),
            to,
        });
    }
    if let Some(rest) = strip_ci(s, "bin the column") {
        let (col, rest2) = split_word_ci(rest, "with width")
            .ok_or_else(|| GelError::bad_phrase("expected with width <n>", rest))?;
        let (width, name) = match split_word_ci(rest2, "and call it") {
            Some((w, n)) => (w, Some(n.to_string())),
            None => (rest2, None),
        };
        return Ok(SkillCall::BinColumn {
            column: col.into(),
            width: width
                .trim()
                .parse()
                .map_err(|_| GelError::bad_phrase("expected a bin width", width))?,
            name,
        });
    }
    if let Some(rest) = strip_ci(s, "extract the") {
        let (part, rest2) = split_word_ci(rest, "of")
            .ok_or_else(|| GelError::bad_phrase("expected of <column>", rest))?;
        let part = parse_date_part(part)
            .ok_or_else(|| GelError::bad_phrase(format!("unknown date part {part:?}"), s))?;
        let (col, name) = match split_word_ci(rest2, "and call it") {
            Some((c, n)) => (c, Some(n.to_string())),
            None => (rest2, None),
        };
        return Ok(SkillCall::ExtractDatePart {
            column: col.into(),
            part,
            name,
        });
    }
    if let Some(rest) = strip_ci(s, "trim whitespace in the column") {
        return Ok(SkillCall::TrimColumn {
            column: rest.into(),
        });
    }
    if let Some(rest) = strip_ci(s, "sample") {
        let (pct_part, seed) = match split_word_ci(rest, "with seed") {
            Some((p, sd)) => (
                p,
                sd.trim()
                    .parse()
                    .map_err(|_| GelError::bad_phrase("expected a seed number", sd))?,
            ),
            None => (rest, 42u64),
        };
        let pct_text = pct_part
            .trim_end_matches("of the rows")
            .trim()
            .trim_end_matches('%');
        let pct: f64 = pct_text
            .trim()
            .parse()
            .map_err(|_| GelError::bad_phrase("expected a percentage", pct_part))?;
        return Ok(SkillCall::Sample {
            fraction: pct / 100.0,
            seed,
        });
    }
    if let Some(rest) = strip_ci(s, "shuffle the rows") {
        let seed = match strip_ci(rest, "with seed") {
            Some(sd) => sd
                .trim()
                .parse()
                .map_err(|_| GelError::bad_phrase("expected a seed number", sd))?,
            None => 42u64,
        };
        return Ok(SkillCall::ShuffleRows { seed });
    }

    // ----- machine learning -----
    if let Some(rest) = strip_ci(s, "train a model named") {
        let (name, rest2) = split_word_ci(rest, "to predict")
            .ok_or_else(|| GelError::bad_phrase("expected to predict <column>", rest))?;
        return parse_train_tail(name, rest2);
    }
    if let Some(rest) = strip_ci(s, "train a model to predict") {
        return parse_train_tail("", rest);
    }
    if let Some(rest) = strip_ci(s, "predict time series with measure columns") {
        let (measures, rest2) = split_word_ci(rest, "for the next").ok_or_else(|| {
            GelError::bad_phrase("expected for the next <n> values of <col>", rest)
        })?;
        let (n, time) = split_word_ci(rest2, "values of")
            .ok_or_else(|| GelError::bad_phrase("expected values of <column>", rest2))?;
        return Ok(SkillCall::PredictTimeSeries {
            measures: parse_list(measures),
            horizon: parse_usize(n, "horizon")?,
            time_column: time.into(),
        });
    }
    if let Some(rest) = strip_ci(s, "predict with the model") {
        return Ok(SkillCall::Predict { model: rest.into() });
    }
    if let Some(rest) = strip_ci(s, "detect outliers in the column") {
        let (col, method) = match split_word_ci(rest, "using the") {
            Some((c, m)) => {
                let m = m.trim_end_matches("method").trim();
                let method = match m.to_lowercase().as_str() {
                    "zscore" | "z-score" => OutlierMethod::default_zscore(),
                    "iqr" => OutlierMethod::default_iqr(),
                    other => {
                        return Err(GelError::bad_phrase(
                            format!("unknown outlier method {other:?}"),
                            s,
                        ))
                    }
                };
                (c, method)
            }
            None => (rest, OutlierMethod::default_zscore()),
        };
        return Ok(SkillCall::DetectOutliers {
            column: col.into(),
            method,
        });
    }
    if let Some(rest) = strip_ci(s, "cluster the rows into") {
        let (k, features) = split_word_ci(rest, "groups using")
            .ok_or_else(|| GelError::bad_phrase("expected <k> groups using <columns>", rest))?;
        return Ok(SkillCall::Cluster {
            k: parse_usize(k, "cluster count")?,
            features: parse_list(features),
        });
    }
    if let Some(rest) = strip_ci(s, "evaluate the model") {
        let (model, target) = split_word_ci(rest, "against")
            .ok_or_else(|| GelError::bad_phrase("expected against <column>", rest))?;
        return Ok(SkillCall::EvaluateModel {
            model: model.into(),
            target: target.into(),
        });
    }

    // ----- SQL -----
    if let Some(rest) = strip_ci(s, "run the sql query") {
        return Ok(SkillCall::RunSql { query: rest.into() });
    }
    if strip_ci(s, "export the dataset as csv").is_some_and(|r| r.is_empty()) {
        return Ok(SkillCall::ExportCsv);
    }

    // ----- collaboration -----
    if let Some(rest) = strip_ci(s, "save this as") {
        return Ok(SkillCall::SaveArtifact { name: rest.into() });
    }
    if let Some(rest) = strip_ci(s, "snapshot this as") {
        return Ok(SkillCall::Snapshot { name: rest.into() });
    }
    if let Some(rest) = strip_ci(s, "define") {
        if let Some((phrase, expansion)) = split_word_ci(rest, "as") {
            return Ok(SkillCall::Define {
                phrase: phrase.into(),
                expansion: expansion.into(),
            });
        }
    }
    if let Some(rest) = strip_ci(s, "comment:") {
        return Ok(SkillCall::Comment { text: rest.into() });
    }
    if let Some(rest) = strip_ci(s, "//") {
        return Ok(SkillCall::Comment { text: rest.into() });
    }
    if let Some(rest) = strip_ci(s, "share the artifact") {
        let (artifact, user) = split_word_ci(rest, "with")
            .ok_or_else(|| GelError::bad_phrase("expected with <user>", rest))?;
        return Ok(SkillCall::ShareArtifact {
            artifact: artifact.into(),
            with_user: user.into(),
        });
    }

    Err(GelError::UnknownSentence {
        sentence: sentence.to_string(),
    })
}

fn parse_train_tail(name: &str, rest: &str) -> Result<SkillCall> {
    let (rest, method) = if let Some((r, _)) = split_word_ci(rest, "with linear regression") {
        (r, MlMethod::Linear)
    } else if let Some((r, _)) = split_word_ci(rest, "with a decision tree") {
        (r, MlMethod::DecisionTree)
    } else {
        (rest, MlMethod::Auto)
    };
    let (target, features) = match split_word_ci(rest, "using") {
        Some((t, f)) => (t.to_string(), parse_list(f)),
        None => (rest.to_string(), vec![]),
    };
    let name = if name.is_empty() {
        format!("model_{}", target.to_lowercase())
    } else {
        name.to_string()
    };
    Ok(SkillCall::TrainModel {
        name,
        target,
        features,
        method,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::format_skill;

    #[test]
    fn figure2_recipe_parses() {
        // Every line of the Figure 2 recipe.
        let lines = [
            "Load data from the URL https://fred.stlouisfed.org/graph/fredgraph.csv?id=GDPC1",
            "Keep the rows where DATE is between the dates 01-01-2005 to 12-31-2020",
            "Predict time series with measure columns GDPC1 for the next 12 values of DATE",
            "Keep the columns DATE, GDPC1, RecordType",
            "Use the dataset fredgraph, version 1",
            "Create a new column RecordType with text Actual",
            "Keep the columns DATE, GDPC1, RecordType",
            "Concatenate the datasets fredgraph and PredictedTimeSeries_GDPC1 remove all duplicates",
            "Keep the rows where DATE is after Today - 10 years",
            "Plot a line chart with the x-axis DATE, the y-axis GDPC1, for each RecordType",
        ];
        for line in lines {
            parse_gel(line).unwrap_or_else(|e| panic!("{line:?}: {e}"));
        }
        // Spot-check semantics.
        match parse_gel(lines[1]).unwrap() {
            SkillCall::KeepRows { predicate } => {
                let sql = predicate.to_sql();
                assert!(sql.contains("2005-01-01"), "{sql}");
                assert!(sql.contains("2020-12-31"), "{sql}");
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_gel(lines[8]).unwrap() {
            SkillCall::KeepRows { predicate } => {
                assert!(predicate.to_sql().contains("2013-06-01"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_gel(lines[7]).unwrap() {
            SkillCall::Concat {
                other,
                remove_duplicates,
            } => {
                assert_eq!(other, "PredictedTimeSeries_GDPC1");
                assert!(remove_duplicates);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn figure3_compute_parses() {
        let call = parse_gel(
            "Compute the count of case_id for each party_sobriety and call the computed columns NumberOfCases",
        )
        .unwrap();
        match call {
            SkillCall::Compute { aggs, for_each } => {
                assert_eq!(aggs.len(), 1);
                assert_eq!(aggs[0].func, AggFunc::Count);
                assert_eq!(aggs[0].column.as_deref(), Some("case_id"));
                assert_eq!(aggs[0].output, "NumberOfCases");
                assert_eq!(for_each, vec!["party_sobriety"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_aggregate_compute() {
        let call =
            parse_gel("Compute the average of Age and the median of Salary for each JobLevel")
                .unwrap();
        match call {
            SkillCall::Compute { aggs, for_each } => {
                assert_eq!(aggs.len(), 2);
                assert_eq!(aggs[0].func, AggFunc::Avg);
                assert_eq!(aggs[1].func, AggFunc::Median);
                assert_eq!(for_each, vec!["JobLevel"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn load_table_with_where_roundtrips() {
        let call =
            parse_gel("Load the table sales from the database MainDatabase where price > 10")
                .unwrap();
        match &call {
            SkillCall::LoadTableFiltered {
                database,
                table,
                predicate,
            } => {
                assert_eq!(database, "MainDatabase");
                assert_eq!(table, "sales");
                assert!(
                    predicate.to_sql().contains("price"),
                    "{}",
                    predicate.to_sql()
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // The formatter emits a sentence the parser accepts back.
        let sentence = format_skill(&call);
        assert_eq!(parse_gel(&sentence).unwrap(), call);
        // Without a where clause the plain load is unchanged.
        assert!(matches!(
            parse_gel("Load the table sales from the database MainDatabase").unwrap(),
            SkillCall::LoadTable { .. }
        ));
    }

    #[test]
    fn count_of_records() {
        let call = parse_gel("Compute the count of records for each party_sobriety").unwrap();
        match call {
            SkillCall::Compute { aggs, .. } => {
                assert_eq!(aggs[0].func, AggFunc::CountRecords);
                assert_eq!(aggs[0].output, "CountOfRecords");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn figure1_visualize_parses() {
        let call =
            parse_gel("Visualize at_fault by party_age , party_sex , cellphone_in_use").unwrap();
        match call {
            SkillCall::Visualize { kpi, by } => {
                assert_eq!(kpi, "at_fault");
                assert_eq!(by, vec!["party_age", "party_sex", "cellphone_in_use"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn condition_sugar() {
        let e = parse_condition("party_sobriety is had not been drinking").unwrap();
        assert_eq!(e.to_sql(), "(party_sobriety = 'had not been drinking')");
        let e = parse_condition("party_age is not null").unwrap();
        assert!(matches!(e, Expr::IsNotNull(_)));
        let e = parse_condition("party_age is between 18 and 30").unwrap();
        assert!(matches!(e, Expr::Between { .. }));
        let e = parse_condition("name contains smith").unwrap();
        assert!(e.to_sql().contains("contains"));
        // SQL fallback.
        let e = parse_condition("party_age >= 18 AND at_fault = 1").unwrap();
        assert!(e.to_sql().contains("AND"));
    }

    #[test]
    fn roundtrip_canonical_sentences() {
        use dc_engine::Value;
        let calls = vec![
            SkillCall::LoadFile {
                path: "cars.csv".into(),
            },
            SkillCall::KeepRows {
                predicate: Expr::col("age").ge(Expr::lit(18i64)),
            },
            SkillCall::KeepColumns {
                columns: vec!["a".into(), "b".into()],
            },
            SkillCall::RenameColumn {
                from: "a".into(),
                to: "b".into(),
            },
            SkillCall::Compute {
                aggs: vec![AggSpec::new(AggFunc::Count, "case_id", "NumberOfCases")],
                for_each: vec!["party_sobriety".into()],
            },
            SkillCall::Sort {
                keys: vec![("x".into(), false), ("y".into(), true)],
            },
            SkillCall::Limit { n: 10 },
            SkillCall::Top {
                column: "v".into(),
                n: 5,
            },
            SkillCall::Concat {
                other: "other_ds".into(),
                remove_duplicates: true,
            },
            SkillCall::Join {
                other: "parties".into(),
                left_on: vec!["case_id".into()],
                right_on: vec!["case_id".into()],
                how: JoinType::Left,
            },
            SkillCall::Distinct { columns: vec![] },
            SkillCall::DropMissing {
                columns: vec!["x".into()],
            },
            SkillCall::FillMissing {
                column: "x".into(),
                value: Value::Int(0),
            },
            SkillCall::ReplaceValues {
                column: "sex".into(),
                from: Value::Str("male".into()),
                to: Value::Str("m".into()),
            },
            SkillCall::CastColumn {
                column: "x".into(),
                to: dc_engine::DataType::Float,
            },
            SkillCall::BinColumn {
                column: "age".into(),
                width: 20,
                name: None,
            },
            SkillCall::ExtractDatePart {
                column: "d".into(),
                part: dc_skills::DatePart::Year,
                name: Some("yr".into()),
            },
            SkillCall::Sample {
                fraction: 0.1,
                seed: 7,
            },
            SkillCall::ShuffleRows { seed: 3 },
            SkillCall::TrainModel {
                name: "m1".into(),
                target: "y".into(),
                features: vec!["x".into()],
                method: MlMethod::Linear,
            },
            SkillCall::Predict { model: "m1".into() },
            SkillCall::DetectOutliers {
                column: "v".into(),
                method: OutlierMethod::default_iqr(),
            },
            SkillCall::Cluster {
                k: 3,
                features: vec!["a".into(), "b".into()],
            },
            SkillCall::EvaluateModel {
                model: "m1".into(),
                target: "y".into(),
            },
            SkillCall::RunSql {
                query: "SELECT * FROM t".into(),
            },
            SkillCall::ExportCsv,
            SkillCall::SaveArtifact {
                name: "chart1".into(),
            },
            SkillCall::Snapshot {
                name: "snap".into(),
            },
            SkillCall::Define {
                phrase: "revenue".into(),
                expansion: "sum(price * quantity)".into(),
            },
            SkillCall::Comment {
                text: "checkpoint".into(),
            },
            SkillCall::ShareArtifact {
                artifact: "c1".into(),
                with_user: "bob".into(),
            },
            SkillCall::DescribeColumn {
                column: "age".into(),
            },
            SkillCall::DescribeDataset,
            SkillCall::ListDatasets,
            SkillCall::ShowHead { n: 5 },
            SkillCall::CountRows,
            SkillCall::ProfileMissing,
            SkillCall::UseSnapshot { name: "s1".into() },
            SkillCall::UseDataset {
                name: "fredgraph".into(),
                version: Some(1),
            },
            SkillCall::LoadTable {
                database: "MainDatabase".into(),
                table: "parties".into(),
            },
        ];
        for call in calls {
            let text = format_skill(&call);
            let parsed =
                parse_gel(&text).unwrap_or_else(|e| panic!("failed to parse {text:?}: {e}"));
            assert_eq!(parsed, call, "roundtrip failed for {text:?}");
        }
    }

    #[test]
    fn roundtrip_condition_from_format() {
        // A formatted KeepRows sentence parses back to the same predicate.
        let call = SkillCall::KeepRows {
            predicate: Expr::col("DATE").between(
                Expr::Literal(Value::Date(days_from_ymd(2005, 1, 1))),
                Expr::Literal(Value::Date(days_from_ymd(2020, 12, 31))),
            ),
        };
        let text = format_skill(&call);
        let parsed = parse_gel(&text).unwrap();
        assert_eq!(parsed, call);
    }

    #[test]
    fn unknown_sentence_errors() {
        assert!(matches!(
            parse_gel("Make me a sandwich"),
            Err(GelError::UnknownSentence { .. })
        ));
        assert!(parse_gel("").is_err());
        assert!(parse_gel("Keep the rows where").is_err());
    }

    #[test]
    fn list_parsing_variants() {
        assert_eq!(parse_list("a, b, c"), vec!["a", "b", "c"]);
        assert_eq!(parse_list("a , b , c"), vec!["a", "b", "c"]);
        assert_eq!(parse_list("a, b and c"), vec!["a", "b", "c"]);
        assert_eq!(parse_list("a and b"), vec!["a", "b"]);
        assert_eq!(parse_list("single"), vec!["single"]);
    }

    #[test]
    fn value_parsing() {
        assert_eq!(parse_value("5"), Value::Int(5));
        assert_eq!(parse_value("2.5"), Value::Float(2.5));
        assert_eq!(parse_value("'two words'"), Value::Str("two words".into()));
        assert_eq!(parse_value("male"), Value::Str("male".into()));
        assert_eq!(parse_value("null"), Value::Null);
        assert_eq!(
            parse_value("2020-01-01"),
            Value::Date(days_from_ymd(2020, 1, 1))
        );
    }

    #[test]
    fn relative_dates() {
        assert_eq!(parse_date_phrase("Today").unwrap(), today_days());
        assert_eq!(
            parse_date_phrase("Today - 10 years").unwrap(),
            days_from_ymd(2013, 6, 1)
        );
        assert_eq!(
            parse_date_phrase("Today - 3 months").unwrap(),
            days_from_ymd(2023, 3, 1)
        );
        assert_eq!(
            parse_date_phrase("Today + 7 days").unwrap(),
            days_from_ymd(2023, 6, 8)
        );
        assert!(parse_date_phrase("Today * 2").is_err());
        assert!(parse_date_phrase("yesterday").is_err());
    }

    #[test]
    fn train_model_default_name() {
        match parse_gel("Train a model to predict Salary using Age, JobLevel").unwrap() {
            SkillCall::TrainModel {
                name,
                target,
                features,
                method,
            } => {
                assert_eq!(name, "model_salary");
                assert_eq!(target, "Salary");
                assert_eq!(features, vec!["Age", "JobLevel"]);
                assert_eq!(method, MlMethod::Auto);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sample_defaults() {
        match parse_gel("Sample 10% of the rows").unwrap() {
            SkillCall::Sample { fraction, seed } => {
                assert!((fraction - 0.1).abs() < 1e-12);
                assert_eq!(seed, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
