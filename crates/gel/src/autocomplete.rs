//! GEL autocomplete (Figure 3c).
//!
//! "Composing a DataChat GEL sentence directly with autocomplete": as the
//! user types, the console suggests skill templates and, once inside a
//! column hole, schema columns matching the typed prefix (the screenshot
//! shows `party_` completing to party_number_deaths, party_race, ...).

use dc_engine::Schema;
use dc_skills::registry;

/// One suggestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    /// The text to insert/replace.
    pub completion: String,
    /// What kind of thing is being suggested.
    pub kind: SuggestionKind,
}

/// Kinds of completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuggestionKind {
    /// A skill sentence template.
    Template,
    /// A column from the active dataset's schema.
    Column,
    /// A keyword continuation within a template.
    Keyword,
}

/// Suggest completions for `input` against `schema`.
///
/// Rules, in order:
/// 1. If the last word is a (possibly empty) prefix of a column name and
///    the sentence already matches a template's beginning, suggest
///    matching columns.
/// 2. Otherwise suggest skill templates whose text starts with the input.
pub fn suggest(input: &str, schema: &Schema) -> Vec<Suggestion> {
    let input_trim = input.trim_start();
    if input_trim.is_empty() {
        // Everything, templates first.
        return registry()
            .iter()
            .map(|s| Suggestion {
                completion: s.gel_template.to_string(),
                kind: SuggestionKind::Template,
            })
            .collect();
    }

    // Column completion: the token being typed (after the final space).
    let (head, last) = match input.rfind(' ') {
        Some(p) => (&input[..=p], &input[p + 1..]),
        None => ("", input),
    };
    let mut out: Vec<Suggestion> = Vec::new();
    if !head.is_empty() {
        let mut cols: Vec<&str> = schema
            .names()
            .into_iter()
            .filter(|c| c.len() >= last.len() && c[..last.len()].eq_ignore_ascii_case(last))
            .collect();
        cols.sort_unstable();
        for c in cols {
            out.push(Suggestion {
                completion: format!("{head}{c}"),
                kind: SuggestionKind::Column,
            });
        }
    }

    // Template completion by prefix (case-insensitive).
    let lower = input_trim.to_lowercase();
    for s in registry() {
        let t = s.gel_template.to_lowercase();
        if t.starts_with(&lower) && t != lower {
            out.push(Suggestion {
                completion: s.gel_template.to_string(),
                kind: SuggestionKind::Template,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::{DataType, Field};

    fn parties_schema() -> Schema {
        Schema::new(vec![
            Field::new("party_number_deaths", DataType::Int),
            Field::new("party_number_injured", DataType::Int),
            Field::new("party_race", DataType::Str),
            Field::new("party_safety_equipment_1", DataType::Str),
            Field::new("party_sobriety", DataType::Str),
            Field::new("party_type", DataType::Str),
            Field::new("case_id", DataType::Int),
        ])
        .unwrap()
    }

    #[test]
    fn figure3c_prefix_completion() {
        // "Compute the count of records for each party_" →
        // the screenshot's dropdown of party_* columns.
        let sugg = suggest(
            "Compute the count of records for each party_",
            &parties_schema(),
        );
        let cols: Vec<&str> = sugg
            .iter()
            .filter(|s| s.kind == SuggestionKind::Column)
            .map(|s| s.completion.rsplit(' ').next().unwrap())
            .collect();
        assert_eq!(
            cols,
            vec![
                "party_number_deaths",
                "party_number_injured",
                "party_race",
                "party_safety_equipment_1",
                "party_sobriety",
                "party_type",
            ]
        );
        // Completions keep the sentence prefix.
        assert!(sugg[0]
            .completion
            .starts_with("Compute the count of records for each "));
    }

    #[test]
    fn template_completion() {
        let sugg = suggest("Load", &parties_schema());
        let templates: Vec<&str> = sugg
            .iter()
            .filter(|s| s.kind == SuggestionKind::Template)
            .map(|s| s.completion.as_str())
            .collect();
        assert!(templates
            .iter()
            .any(|t| t.starts_with("Load data from the file")));
        assert!(templates.iter().any(|t| t.starts_with("Load the table")));
    }

    #[test]
    fn empty_input_lists_templates() {
        let sugg = suggest("", &parties_schema());
        assert!(sugg.len() >= 45);
        assert!(sugg.iter().all(|s| s.kind == SuggestionKind::Template));
    }

    #[test]
    fn case_insensitive_column_match() {
        let sugg = suggest("Describe the column PARTY_s", &parties_schema());
        let cols: Vec<&String> = sugg
            .iter()
            .filter(|s| s.kind == SuggestionKind::Column)
            .map(|s| &s.completion)
            .collect();
        assert_eq!(cols.len(), 2); // party_safety_equipment_1, party_sobriety
    }

    #[test]
    fn no_matches_is_empty() {
        let sugg = suggest("Describe the column zzz", &parties_schema());
        assert!(sugg.iter().all(|s| s.kind != SuggestionKind::Column));
    }
}
