//! Home Screen folders and Insights Boards (§2.4).
//!
//! The Home Screen "resembles an operating system file manager": folders
//! contain artifacts and other folders, and are artifacts themselves. An
//! Insights Board is "a collection of artifacts presented in a visual
//! layout", modeled as a slide/poster: arbitrary positioning, text boxes,
//! and unrelated artifacts side by side.

use std::collections::BTreeMap;

use crate::error::{CollabError, Result};

/// One entry in a folder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FolderEntry {
    /// A named artifact.
    Artifact(String),
    /// A nested folder.
    Folder(String),
    /// A session reference.
    Session(u64),
}

/// The Home Screen: a tree of named folders.
#[derive(Debug, Default)]
pub struct HomeScreen {
    folders: BTreeMap<String, Vec<FolderEntry>>,
}

impl HomeScreen {
    /// A home screen with an empty root folder.
    pub fn new() -> HomeScreen {
        let mut h = HomeScreen::default();
        h.folders.insert("home".to_string(), Vec::new());
        h
    }

    /// Create a folder inside `parent`.
    pub fn create_folder(&mut self, parent: &str, name: impl Into<String>) -> Result<()> {
        let name = name.into();
        if self.folders.contains_key(&name) {
            return Err(CollabError::invalid(format!("folder {name:?} exists")));
        }
        let parent_entries =
            self.folders
                .get_mut(parent)
                .ok_or_else(|| CollabError::ContainerNotFound {
                    name: parent.to_string(),
                })?;
        parent_entries.push(FolderEntry::Folder(name.clone()));
        self.folders.insert(name, Vec::new());
        Ok(())
    }

    /// Place an entry in a folder.
    pub fn place(&mut self, folder: &str, entry: FolderEntry) -> Result<()> {
        let entries =
            self.folders
                .get_mut(folder)
                .ok_or_else(|| CollabError::ContainerNotFound {
                    name: folder.to_string(),
                })?;
        if !entries.contains(&entry) {
            entries.push(entry);
        }
        Ok(())
    }

    /// Move an entry between folders.
    pub fn r#move(&mut self, from: &str, to: &str, entry: &FolderEntry) -> Result<()> {
        {
            let src = self
                .folders
                .get_mut(from)
                .ok_or_else(|| CollabError::ContainerNotFound {
                    name: from.to_string(),
                })?;
            let pos = src
                .iter()
                .position(|e| e == entry)
                .ok_or_else(|| CollabError::invalid(format!("{entry:?} is not in {from:?}")))?;
            src.remove(pos);
        }
        self.place(to, entry.clone())
    }

    /// Remove an entry from a folder (deleting a folder entry does not
    /// delete the artifact itself).
    pub fn remove(&mut self, folder: &str, entry: &FolderEntry) -> Result<()> {
        let entries =
            self.folders
                .get_mut(folder)
                .ok_or_else(|| CollabError::ContainerNotFound {
                    name: folder.to_string(),
                })?;
        let pos = entries
            .iter()
            .position(|e| e == entry)
            .ok_or_else(|| CollabError::invalid(format!("{entry:?} not in {folder:?}")))?;
        entries.remove(pos);
        Ok(())
    }

    /// List a folder.
    pub fn list(&self, folder: &str) -> Result<&[FolderEntry]> {
        self.folders
            .get(folder)
            .map(|v| v.as_slice())
            .ok_or_else(|| CollabError::ContainerNotFound {
                name: folder.to_string(),
            })
    }
}

/// One element placed on an Insights Board.
#[derive(Debug, Clone, PartialEq)]
pub enum BoardElement {
    /// A live artifact (referenced by name — IBs show current versions).
    Artifact { name: String },
    /// Free text ("the addition of graphical elements like text boxes").
    TextBox { text: String },
}

/// A positioned element.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedElement {
    pub element: BoardElement,
    /// Arbitrary position/size, creator-defined layout.
    pub x: i32,
    pub y: i32,
    pub width: u32,
    pub height: u32,
}

/// An Insights Board: a presentation-layout collection of artifacts.
#[derive(Debug, Clone, Default)]
pub struct InsightsBoard {
    pub title: String,
    elements: Vec<PlacedElement>,
}

impl InsightsBoard {
    /// An empty board.
    pub fn new(title: impl Into<String>) -> InsightsBoard {
        InsightsBoard {
            title: title.into(),
            elements: Vec::new(),
        }
    }

    /// Pin an artifact at a position.
    pub fn pin_artifact(&mut self, name: impl Into<String>, x: i32, y: i32, w: u32, h: u32) {
        self.elements.push(PlacedElement {
            element: BoardElement::Artifact { name: name.into() },
            x,
            y,
            width: w,
            height: h,
        });
    }

    /// Add a text box.
    pub fn add_text(&mut self, text: impl Into<String>, x: i32, y: i32, w: u32, h: u32) {
        self.elements.push(PlacedElement {
            element: BoardElement::TextBox { text: text.into() },
            x,
            y,
            width: w,
            height: h,
        });
    }

    /// All placed elements.
    pub fn elements(&self) -> &[PlacedElement] {
        &self.elements
    }

    /// Names of the artifacts this board presents.
    pub fn artifact_names(&self) -> Vec<&str> {
        self.elements
            .iter()
            .filter_map(|e| match &e.element {
                BoardElement::Artifact { name } => Some(name.as_str()),
                BoardElement::TextBox { .. } => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folders_nest_and_contain() {
        let mut h = HomeScreen::new();
        h.create_folder("home", "q3").unwrap();
        h.place("q3", FolderEntry::Artifact("chart1".into()))
            .unwrap();
        h.place("q3", FolderEntry::Session(7)).unwrap();
        assert_eq!(h.list("q3").unwrap().len(), 2);
        assert_eq!(h.list("home").unwrap(), &[FolderEntry::Folder("q3".into())]);
    }

    #[test]
    fn duplicate_folder_rejected() {
        let mut h = HomeScreen::new();
        h.create_folder("home", "a").unwrap();
        assert!(h.create_folder("home", "a").is_err());
        assert!(h.create_folder("missing", "b").is_err());
    }

    #[test]
    fn move_between_folders() {
        let mut h = HomeScreen::new();
        h.create_folder("home", "a").unwrap();
        h.create_folder("home", "b").unwrap();
        let e = FolderEntry::Artifact("x".into());
        h.place("a", e.clone()).unwrap();
        h.r#move("a", "b", &e).unwrap();
        assert!(h.list("a").unwrap().is_empty());
        assert_eq!(h.list("b").unwrap(), std::slice::from_ref(&e));
        assert!(h.r#move("a", "b", &e).is_err()); // no longer in a
    }

    #[test]
    fn remove_entry_keeps_folder() {
        let mut h = HomeScreen::new();
        let e = FolderEntry::Artifact("x".into());
        h.place("home", e.clone()).unwrap();
        h.remove("home", &e).unwrap();
        assert!(h.list("home").unwrap().is_empty());
        assert!(h.remove("home", &e).is_err());
    }

    #[test]
    fn board_mixes_unrelated_artifacts_and_text() {
        // "Completely unrelated artifacts can be posted to the same IB."
        let mut ib = InsightsBoard::new("Q3 results");
        ib.pin_artifact("gdp-forecast", 0, 0, 600, 400);
        ib.pin_artifact("collision-bubble", 620, 0, 400, 400);
        ib.add_text("Key takeaway: the gap persists.", 0, 420, 1020, 80);
        assert_eq!(ib.elements().len(), 3);
        assert_eq!(
            ib.artifact_names(),
            vec!["gdp-forecast", "collision-bubble"]
        );
    }

    #[test]
    fn layout_is_arbitrary() {
        let mut ib = InsightsBoard::new("free-form");
        ib.pin_artifact("a", -50, 900, 10, 10); // overlap/offscreen allowed
        ib.pin_artifact("b", -50, 900, 10, 10);
        assert_eq!(ib.elements().len(), 2);
    }
}
