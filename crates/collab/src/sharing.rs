//! Permissions and sharing (§2.4).
//!
//! Sessions and artifacts carry access-control lists with graded
//! permission levels; sharing outside the platform uses generated
//! secret+key tokens that authorize access "rather than a user directly",
//! convenient to embed in a URL.

use std::collections::BTreeMap;

use crate::error::{CollabError, Result};

/// Graded access levels ("various levels of access privileges can be
/// granted to or revoked from individual collaborators").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Permission {
    /// See the artifact/session and its recipe.
    View,
    /// Take actions (run skills, refresh).
    Act,
    /// Edit the object (rename, change steps) and reshare.
    Edit,
    /// Full control (delete, manage permissions).
    Own,
}

impl Permission {
    /// Whether this level allows running skills.
    pub fn can_act(self) -> bool {
        self >= Permission::Act
    }

    /// Whether this level allows edits.
    pub fn can_edit(self) -> bool {
        self >= Permission::Edit
    }
}

/// An access-control list with an owner.
#[derive(Debug, Clone, Default)]
pub struct Shareable {
    grants: BTreeMap<String, Permission>,
}

impl Shareable {
    /// An ACL whose owner holds [`Permission::Own`].
    pub fn owned_by(owner: impl Into<String>) -> Shareable {
        let mut s = Shareable::default();
        s.grants.insert(owner.into(), Permission::Own);
        s
    }

    /// Grant (or change) a user's permission.
    pub fn grant(&mut self, user: impl Into<String>, permission: Permission) {
        self.grants.insert(user.into(), permission);
    }

    /// Revoke a user's access entirely.
    pub fn revoke(&mut self, user: &str) {
        self.grants.remove(user);
    }

    /// The permission a user holds.
    pub fn permission_of(&self, user: &str) -> Option<Permission> {
        self.grants.get(user).copied()
    }

    /// All grants (sorted by user).
    pub fn grants(&self) -> impl Iterator<Item = (&str, Permission)> {
        self.grants.iter().map(|(u, p)| (u.as_str(), *p))
    }
}

/// A secret+key share token for out-of-platform recipients (§2.4: "a
/// generated secret and key ... highly convenient to include this secret
/// in a URL").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareLink {
    /// Public key naming the artifact grant.
    pub key: String,
    /// The secret that authorizes access.
    pub secret: String,
    /// Artifact this link exposes.
    pub artifact: String,
    /// What the bearer may do.
    pub permission: Permission,
    /// Whether the link has been revoked.
    pub revoked: bool,
}

/// Issues and validates share links.
#[derive(Debug, Default)]
pub struct LinkIssuer {
    links: BTreeMap<String, ShareLink>,
    counter: u64,
}

fn obscure(x: u64) -> String {
    // A small deterministic scrambler — unguessable enough for tests,
    // clearly not cryptography (the product would use a real CSPRNG).
    let mut v = x.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xD1B54A32D192ED03;
    let mut s = String::with_capacity(16);
    for _ in 0..16 {
        let digit = (v & 0xF) as u32;
        s.push(char::from_digit(digit, 16).expect("hex digit"));
        v = (v >> 4) ^ v.wrapping_mul(0xff51afd7ed558ccd);
    }
    s
}

impl LinkIssuer {
    /// A fresh issuer.
    pub fn new() -> LinkIssuer {
        LinkIssuer::default()
    }

    /// Issue a link for an artifact.
    pub fn issue(&mut self, artifact: impl Into<String>, permission: Permission) -> ShareLink {
        self.counter += 1;
        let key = format!("k{}", obscure(self.counter));
        let secret = obscure(self.counter.wrapping_mul(7) ^ 0xfeed);
        let link = ShareLink {
            key: key.clone(),
            secret,
            artifact: artifact.into(),
            permission,
            revoked: false,
        };
        self.links.insert(key, link.clone());
        link
    }

    /// Authorize a (key, secret) pair, returning the artifact name and
    /// permission on success.
    pub fn authorize(&self, key: &str, secret: &str) -> Result<(&str, Permission)> {
        let link = self.links.get(key).ok_or(CollabError::BadSecret)?;
        if link.revoked || link.secret != secret {
            return Err(CollabError::BadSecret);
        }
        Ok((link.artifact.as_str(), link.permission))
    }

    /// Revoke a link by key.
    pub fn revoke(&mut self, key: &str) -> Result<()> {
        self.links
            .get_mut(key)
            .map(|l| l.revoked = true)
            .ok_or(CollabError::BadSecret)
    }

    /// Render a link as a shareable URL.
    pub fn url(link: &ShareLink) -> String {
        format!(
            "https://app.datachat.local/shared/{}?secret={}",
            link.key, link.secret
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permission_ordering() {
        assert!(Permission::Own > Permission::Edit);
        assert!(Permission::Edit.can_act());
        assert!(!Permission::View.can_act());
        assert!(!Permission::Act.can_edit());
        assert!(Permission::Own.can_edit());
    }

    #[test]
    fn acl_grant_revoke() {
        let mut acl = Shareable::owned_by("ann");
        assert_eq!(acl.permission_of("ann"), Some(Permission::Own));
        acl.grant("bob", Permission::View);
        assert_eq!(acl.permission_of("bob"), Some(Permission::View));
        acl.grant("bob", Permission::Edit); // upgrade
        assert_eq!(acl.permission_of("bob"), Some(Permission::Edit));
        acl.revoke("bob");
        assert_eq!(acl.permission_of("bob"), None);
        assert_eq!(acl.grants().count(), 1);
    }

    #[test]
    fn links_authorize_and_revoke() {
        let mut issuer = LinkIssuer::new();
        let link = issuer.issue("q3-report", Permission::View);
        let (artifact, perm) = issuer.authorize(&link.key, &link.secret).unwrap();
        assert_eq!(artifact, "q3-report");
        assert_eq!(perm, Permission::View);
        // Wrong secret fails.
        assert!(issuer.authorize(&link.key, "nope").is_err());
        assert!(issuer.authorize("missing", &link.secret).is_err());
        // Revocation closes the door.
        issuer.revoke(&link.key).unwrap();
        assert!(issuer.authorize(&link.key, &link.secret).is_err());
        assert!(issuer.revoke("missing").is_err());
    }

    #[test]
    fn urls_embed_both_parts() {
        let mut issuer = LinkIssuer::new();
        let link = issuer.issue("chart1", Permission::View);
        let url = LinkIssuer::url(&link);
        assert!(url.contains(&link.key));
        assert!(url.contains(&link.secret));
    }

    #[test]
    fn distinct_links_have_distinct_secrets() {
        let mut issuer = LinkIssuer::new();
        let a = issuer.issue("x", Permission::View);
        let b = issuer.issue("x", Permission::View);
        assert_ne!(a.key, b.key);
        assert_ne!(a.secret, b.secret);
    }
}
