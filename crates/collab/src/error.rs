//! Collaboration-layer errors.

use std::fmt;

/// Errors from sessions, sharing and artifact management.
#[derive(Debug, Clone, PartialEq)]
pub enum CollabError {
    /// No such user.
    UserNotFound { name: String },
    /// No such session.
    SessionNotFound { id: u64 },
    /// No such artifact.
    ArtifactNotFound { name: String },
    /// No such folder/board.
    ContainerNotFound { name: String },
    /// The acting user lacks the required permission.
    PermissionDenied { user: String, needed: String },
    /// Another skill request is already executing in this session
    /// (§2.4's session-level lock).
    SessionBusy { session: u64 },
    /// A secret-link token failed to authorize.
    BadSecret,
    /// Invalid argument.
    InvalidArgument { message: String },
    /// Propagated skill failure.
    Skill(dc_skills::SkillError),
}

impl CollabError {
    /// Convenience constructor for [`CollabError::InvalidArgument`].
    pub fn invalid(message: impl Into<String>) -> Self {
        CollabError::InvalidArgument {
            message: message.into(),
        }
    }
}

impl fmt::Display for CollabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollabError::UserNotFound { name } => write!(f, "user not found: {name:?}"),
            CollabError::SessionNotFound { id } => write!(f, "session not found: {id}"),
            CollabError::ArtifactNotFound { name } => write!(f, "artifact not found: {name:?}"),
            CollabError::ContainerNotFound { name } => {
                write!(f, "folder or board not found: {name:?}")
            }
            CollabError::PermissionDenied { user, needed } => {
                write!(f, "{user} lacks {needed} permission")
            }
            CollabError::SessionBusy { session } => write!(
                f,
                "another execution was already running in session {session}"
            ),
            CollabError::BadSecret => write!(f, "invalid share secret"),
            CollabError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
            CollabError::Skill(e) => write!(f, "skill error: {e}"),
        }
    }
}

impl std::error::Error for CollabError {}

impl From<dc_skills::SkillError> for CollabError {
    fn from(e: dc_skills::SkillError) -> Self {
        CollabError::Skill(e)
    }
}

/// Result alias for the collab crate.
pub type Result<T> = std::result::Result<T, CollabError>;
