//! # dc-collab — collaboration platform layer (§2.3–2.4)
//!
//! Sessions with server-side tracking and the session-level lock,
//! graded permissions and secret-link sharing, artifacts with sliced
//! recipes + refresh/replay, Home Screen folders, and Insights Boards.

pub mod artifact;
pub mod board;
pub mod error;
pub mod session;
pub mod sharing;

pub use artifact::{Artifact, ArtifactKind};
pub use board::{BoardElement, FolderEntry, HomeScreen, InsightsBoard, PlacedElement};
pub use error::{CollabError, Result};
pub use session::{
    current_env, install_env, with_env, EnvHandle, Session, SessionRef, SessionRegistry,
};
pub use sharing::{LinkIssuer, Permission, ShareLink, Shareable};
