//! Sessions and the session-level lock (§2.4).
//!
//! "Actions taken in a session are tracked in the platform itself rather
//! than the client, so multiple users can maintain a synchronized view of
//! the work. A simple session-level lock prevents concurrent skill
//! requests ... requests sent concurrently will fail with a message to
//! the user indicating that another execution was already running."

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dc_skills::resilient::{ExecPolicy, ExecReport, NodeOutcome};
use dc_skills::{Env, Executor, NodeId, SkillCall, SkillDag, SkillOutput};
use parking_lot::Mutex;

use crate::error::{CollabError, Result};
use crate::sharing::{Permission, Shareable};

/// A collaborative analysis session: a skill DAG, its results, and an
/// access-control list.
#[derive(Debug)]
pub struct Session {
    pub id: u64,
    pub owner: String,
    dag: Mutex<SkillDag>,
    /// Tip of the primary chain (the "current dataset").
    current: AtomicU64,
    has_current: AtomicBool,
    executor: Mutex<Executor>,
    /// The §2.4 lock: set while a request executes.
    executing: AtomicBool,
    acl: Mutex<Shareable>,
    /// Log of executed requests (user, GEL sentence), the synchronized
    /// view collaborators see.
    log: Mutex<Vec<(String, String)>>,
    /// When set, submissions run through the resilient executor under
    /// this policy (retry, per-node budgets, and the per-session
    /// wall-clock deadline `run_budget` carries). `None` uses the plain
    /// fail-fast path.
    policy: Mutex<Option<ExecPolicy>>,
}

/// Handle type: sessions are shared between collaborators.
pub type SessionRef = Arc<Session>;

impl Session {
    /// Open a fresh session.
    pub fn new(id: u64, owner: impl Into<String>) -> SessionRef {
        let owner = owner.into();
        Arc::new(Session {
            id,
            owner: owner.clone(),
            dag: Mutex::new(SkillDag::new()),
            current: AtomicU64::new(0),
            has_current: AtomicBool::new(false),
            executor: Mutex::new(Executor::new()),
            executing: AtomicBool::new(false),
            acl: Mutex::new(Shareable::owned_by(owner)),
            log: Mutex::new(Vec::new()),
            policy: Mutex::new(None),
        })
    }

    /// Install (or clear) the execution policy every later submission
    /// runs under. The platform threads the per-session deadline through
    /// here; a serving layer installs time-sliced policies per quantum
    /// instead via [`Session::execute_staged`].
    pub fn set_exec_policy(&self, policy: Option<ExecPolicy>) {
        *self.policy.lock() = policy;
    }

    /// The currently installed execution policy.
    pub fn exec_policy(&self) -> Option<ExecPolicy> {
        self.policy.lock().clone()
    }

    /// Grant a collaborator access.
    pub fn share_with(&self, user: impl Into<String>, permission: Permission) {
        self.acl.lock().grant(user, permission);
    }

    /// Revoke a collaborator's access.
    pub fn revoke(&self, user: &str) {
        self.acl.lock().revoke(user);
    }

    /// The permission a user holds.
    pub fn permission_of(&self, user: &str) -> Option<Permission> {
        self.acl.lock().permission_of(user)
    }

    /// Submit one skill request on behalf of `user`.
    ///
    /// Fails with [`CollabError::SessionBusy`] when another request is
    /// mid-flight, and with [`CollabError::PermissionDenied`] when the
    /// user cannot act in this session.
    pub fn submit(&self, user: &str, call: SkillCall) -> Result<SkillOutput> {
        self.check_can_act(user)?;
        // Session-level lock: atomically claim execution.
        if self.executing.swap(true, Ordering::AcqRel) {
            return Err(CollabError::SessionBusy { session: self.id });
        }
        let result = self.run_locked(user, call);
        self.executing.store(false, Ordering::Release);
        result
    }

    fn check_can_act(&self, user: &str) -> Result<()> {
        let perm = self
            .permission_of(user)
            .ok_or_else(|| CollabError::PermissionDenied {
                user: user.to_string(),
                needed: "act".into(),
            })?;
        if !perm.can_act() {
            return Err(CollabError::PermissionDenied {
                user: user.to_string(),
                needed: "act".into(),
            });
        }
        Ok(())
    }

    /// Add `call` to the session DAG with its inputs resolved against the
    /// current dataset and named datasets, without executing anything.
    fn stage_locked(&self, call: SkillCall) -> Result<NodeId> {
        let mut dag = self.dag.lock();
        let inputs: Vec<NodeId> = match &call {
            SkillCall::UseDataset { name, .. } => match dag.resolve_name(name) {
                Ok(n) => vec![n],
                Err(_) => vec![],
            },
            SkillCall::Concat { other, .. } | SkillCall::Join { other, .. } => {
                let second = dag.resolve_name(other)?;
                let first = self.current_node().ok_or_else(|| {
                    CollabError::invalid("no current dataset for a two-input skill")
                })?;
                vec![first, second]
            }
            c if c.needs_input() => vec![self.current_node().ok_or_else(|| {
                CollabError::invalid(format!("{} needs a dataset; load one first", c.name()))
            })?],
            _ => vec![],
        };
        Ok(dag.add(call, inputs)?)
    }

    /// Stage one call for later execution: permission check + DAG
    /// insertion, no execution, no session lock. The serving layer stages
    /// a job's steps as they come due, then drives each through
    /// [`Session::execute_staged`] — possibly across several time slices.
    pub fn stage(&self, user: &str, call: SkillCall) -> Result<NodeId> {
        self.check_can_act(user)?;
        self.stage_locked(call)
    }

    /// Execute a previously staged node against a caller-provided
    /// environment under an explicit policy, returning the full
    /// [`ExecReport`]. Claims the §2.4 session lock for the duration.
    ///
    /// The session's current dataset and log advance only when the run
    /// produced the target's output — a preempted or failed slice leaves
    /// the session state untouched (completed sub-DAG results stay
    /// checkpointed in the session's executor, so re-running the same
    /// node resumes from the failed frontier).
    pub fn execute_staged(
        &self,
        user: &str,
        node: NodeId,
        env: &mut Env,
        policy: &ExecPolicy,
    ) -> Result<ExecReport> {
        self.execute_staged_with_estimates(user, node, env, policy, &[])
    }

    /// [`Session::execute_staged`] with per-node scan-byte estimates from
    /// a preflight analysis, recorded on the report's nodes as
    /// `bytes_estimated` (estimate-vs-actual q-error at the serving
    /// layer). Estimates for nodes outside the executed slice are
    /// ignored.
    pub fn execute_staged_with_estimates(
        &self,
        user: &str,
        node: NodeId,
        env: &mut Env,
        policy: &ExecPolicy,
        estimates: &[(NodeId, u64)],
    ) -> Result<ExecReport> {
        self.check_can_act(user)?;
        if self.executing.swap(true, Ordering::AcqRel) {
            return Err(CollabError::SessionBusy { session: self.id });
        }
        let result = (|| {
            let mut ex = self.executor.lock();
            let dag = self.dag.lock();
            let report =
                ex.run_resilient_with_preflight(&dag, node, env, policy, &[], estimates)?;
            if report.succeeded() {
                let gel = dc_gel::format_skill(&dag.node(node)?.call);
                self.current.store(node as u64, Ordering::Release);
                self.has_current.store(true, Ordering::Release);
                self.log.lock().push((user.to_string(), gel));
            }
            Ok(report)
        })();
        self.executing.store(false, Ordering::Release);
        result
    }

    fn run_locked(&self, user: &str, call: SkillCall) -> Result<SkillOutput> {
        let gel = dc_gel::format_skill(&call);
        let node = self.stage_locked(call)?;
        let policy = self.policy.lock().clone();
        let out = {
            let mut ex = self.executor.lock();
            let dag = self.dag.lock();
            match &policy {
                None => with_env(|env| ex.run(&dag, node, env))?,
                Some(p) => {
                    let report = with_env(|env| ex.run_resilient(&dag, node, env, p))?;
                    report_output(report)?
                }
            }
        };
        self.current.store(node as u64, Ordering::Release);
        self.has_current.store(true, Ordering::Release);
        self.log.lock().push((user.to_string(), gel));
        Ok(out)
    }

    /// The node holding the current dataset.
    pub fn current_node(&self) -> Option<NodeId> {
        self.has_current
            .load(Ordering::Acquire)
            .then(|| self.current.load(Ordering::Acquire) as NodeId)
    }

    /// Bind a dataset name to the current node.
    pub fn name_current(&self, name: impl Into<String>) -> Result<()> {
        let node = self
            .current_node()
            .ok_or_else(|| CollabError::invalid("nothing to name yet"))?;
        self.dag.lock().bind_name(name, node)?;
        Ok(())
    }

    /// Approximate heap bytes of the session executor's checkpointed
    /// results. A serving layer polls this to bound per-session memory.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.executor.lock().cache_bytes()
    }

    /// Drop the session executor's checkpointed results. The DAG and log
    /// are untouched — later requests re-execute evicted sub-DAGs from
    /// their recorded calls, so this trades warmth (and re-charged cloud
    /// scans) for memory, never correctness.
    pub fn clear_checkpoints(&self) {
        self.executor.lock().clear_cache();
    }

    /// Snapshot of the session's DAG (for saving artifacts).
    pub fn dag_snapshot(&self) -> SkillDag {
        self.dag.lock().clone()
    }

    /// The synchronized request log.
    pub fn log(&self) -> Vec<(String, String)> {
        self.log.lock().clone()
    }
}

/// A shareable handle on one execution environment: the world state
/// (catalog, snapshots, fixtures, models) behind an `Arc<Mutex>`, so many
/// threads — a platform facade plus a pool of serve workers — can run
/// sessions against the same logical world. The mutex is the
/// "single-writer world lock": skills take `&mut Env`, so execution
/// against one world is serialized here; fairness across tenants is the
/// serving layer's job (time slices bound how long one job may hold it).
#[derive(Debug, Clone, Default)]
pub struct EnvHandle(Arc<Mutex<Env>>);

impl EnvHandle {
    /// Wrap an environment in a shareable handle.
    pub fn new(env: Env) -> EnvHandle {
        EnvHandle(Arc::new(Mutex::new(env)))
    }

    /// Run `f` with exclusive access to the environment. Do not nest —
    /// the lock is not reentrant.
    pub fn with<R>(&self, f: impl FnOnce(&mut Env) -> R) -> R {
        f(&mut self.0.lock())
    }

    /// Whether two handles view the same environment.
    pub fn same_env(&self, other: &EnvHandle) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

// Each thread holds a handle on its *current* environment so
// Session::submit keeps a simple signature. The platform facade installs
// its environment's handle at construction; serve workers install the
// service's shared handle once at thread start. Two threads holding the
// same handle share one world.
thread_local! {
    static ENV: std::cell::RefCell<EnvHandle> = std::cell::RefCell::new(EnvHandle::default());
}

/// Run `f` with access to the current thread's session environment.
/// Must not be nested inside itself (the environment lock is not
/// reentrant).
pub fn with_env<R>(f: impl FnOnce(&mut Env) -> R) -> R {
    // Clone the handle out of the thread-local first so `f` may call
    // `install_env`/`current_env` without re-borrowing the RefCell.
    let handle = ENV.with(|h| h.borrow().clone());
    handle.with(f)
}

/// Make `handle` the current thread's environment. Later [`with_env`]
/// calls (and every session submission on this thread) run against it.
pub fn install_env(handle: &EnvHandle) {
    ENV.with(|h| *h.borrow_mut() = handle.clone());
}

/// The current thread's environment handle.
pub fn current_env() -> EnvHandle {
    ENV.with(|h| h.borrow().clone())
}

/// The target's output, or the run's first node failure as the
/// submission error.
fn report_output(report: ExecReport) -> Result<SkillOutput> {
    let ExecReport { output, nodes, .. } = report;
    if let Some(out) = output {
        return Ok(out);
    }
    for n in nodes {
        if let NodeOutcome::Failed(e) = n.outcome {
            return Err(CollabError::Skill(e));
        }
    }
    Err(CollabError::invalid("execution produced no output"))
}

/// Registry of sessions (the platform's server-side tracking).
#[derive(Debug, Default)]
pub struct SessionRegistry {
    sessions: Mutex<BTreeMap<u64, SessionRef>>,
    next_id: AtomicU64,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> SessionRegistry {
        SessionRegistry::default()
    }

    /// Open a session for `owner`.
    pub fn open(&self, owner: impl Into<String>) -> SessionRef {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let s = Session::new(id, owner);
        self.sessions.lock().insert(id, Arc::clone(&s));
        s
    }

    /// Look up a session.
    pub fn get(&self, id: u64) -> Result<SessionRef> {
        self.sessions
            .lock()
            .get(&id)
            .cloned()
            .ok_or(CollabError::SessionNotFound { id })
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Whether no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.sessions.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::Expr;

    fn seed_env() {
        with_env(|env| {
            *env = Env::new();
            env.add_file("d.csv", "x\n1\n2\n3\n4\n");
        });
    }

    #[test]
    fn linear_session_flow() {
        seed_env();
        let s = Session::new(1, "ann");
        s.submit(
            "ann",
            SkillCall::LoadFile {
                path: "d.csv".into(),
            },
        )
        .unwrap();
        let out = s
            .submit(
                "ann",
                SkillCall::KeepRows {
                    predicate: Expr::col("x").gt(Expr::lit(1i64)),
                },
            )
            .unwrap();
        assert_eq!(out.as_table().unwrap().num_rows(), 3);
        assert_eq!(s.log().len(), 2);
        assert_eq!(s.log()[1].0, "ann");
    }

    #[test]
    fn unshared_user_denied() {
        seed_env();
        let s = Session::new(1, "ann");
        let r = s.submit(
            "bob",
            SkillCall::LoadFile {
                path: "d.csv".into(),
            },
        );
        assert!(matches!(r, Err(CollabError::PermissionDenied { .. })));
    }

    #[test]
    fn viewer_cannot_act_editor_can() {
        seed_env();
        let s = Session::new(1, "ann");
        s.share_with("bob", Permission::View);
        assert!(matches!(
            s.submit(
                "bob",
                SkillCall::LoadFile {
                    path: "d.csv".into()
                }
            ),
            Err(CollabError::PermissionDenied { .. })
        ));
        s.share_with("bob", Permission::Edit);
        assert!(s
            .submit(
                "bob",
                SkillCall::LoadFile {
                    path: "d.csv".into()
                }
            )
            .is_ok());
        s.revoke("bob");
        assert!(s.permission_of("bob").is_none());
    }

    #[test]
    fn concurrent_requests_rejected() {
        use std::sync::atomic::AtomicUsize;
        seed_env();
        let s = Session::new(1, "ann");
        s.share_with("bob", Permission::Edit);
        s.submit(
            "ann",
            SkillCall::LoadFile {
                path: "d.csv".into(),
            },
        )
        .unwrap();
        // Claim the lock as if a long request were running; a second
        // submission must fail with the paper's message.
        s.executing.store(true, Ordering::Release);
        let busy = AtomicUsize::new(0);
        match s.submit("bob", SkillCall::Limit { n: 1 }) {
            Err(CollabError::SessionBusy { session }) => {
                assert_eq!(session, 1);
                busy.fetch_add(1, Ordering::Relaxed);
            }
            other => panic!("expected SessionBusy, got {other:?}"),
        }
        s.executing.store(false, Ordering::Release);
        assert!(s.submit("bob", SkillCall::Limit { n: 1 }).is_ok());
        assert_eq!(busy.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn named_datasets_enable_two_input_skills() {
        seed_env();
        let s = Session::new(1, "ann");
        s.submit(
            "ann",
            SkillCall::LoadFile {
                path: "d.csv".into(),
            },
        )
        .unwrap();
        s.name_current("first").unwrap();
        s.submit(
            "ann",
            SkillCall::LoadFile {
                path: "d.csv".into(),
            },
        )
        .unwrap();
        let out = s
            .submit(
                "ann",
                SkillCall::Concat {
                    other: "first".into(),
                    remove_duplicates: false,
                },
            )
            .unwrap();
        assert_eq!(out.as_table().unwrap().num_rows(), 8);
    }

    #[test]
    fn registry_assigns_ids() {
        let reg = SessionRegistry::new();
        let a = reg.open("ann");
        let b = reg.open("bob");
        assert_ne!(a.id, b.id);
        assert!(reg.get(a.id).is_ok());
        assert!(reg.get(999).is_err());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn transform_without_load_errors() {
        seed_env();
        let s = Session::new(1, "ann");
        assert!(s.submit("ann", SkillCall::Limit { n: 1 }).is_err());
    }
}
