//! Sessions and the session-level lock (§2.4).
//!
//! "Actions taken in a session are tracked in the platform itself rather
//! than the client, so multiple users can maintain a synchronized view of
//! the work. A simple session-level lock prevents concurrent skill
//! requests ... requests sent concurrently will fail with a message to
//! the user indicating that another execution was already running."

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dc_skills::{Env, Executor, NodeId, SkillCall, SkillDag, SkillOutput};
use parking_lot::Mutex;

use crate::error::{CollabError, Result};
use crate::sharing::{Permission, Shareable};

/// A collaborative analysis session: a skill DAG, its results, and an
/// access-control list.
#[derive(Debug)]
pub struct Session {
    pub id: u64,
    pub owner: String,
    dag: Mutex<SkillDag>,
    /// Tip of the primary chain (the "current dataset").
    current: AtomicU64,
    has_current: AtomicBool,
    executor: Mutex<Executor>,
    /// The §2.4 lock: set while a request executes.
    executing: AtomicBool,
    acl: Mutex<Shareable>,
    /// Log of executed requests (user, GEL sentence), the synchronized
    /// view collaborators see.
    log: Mutex<Vec<(String, String)>>,
}

/// Handle type: sessions are shared between collaborators.
pub type SessionRef = Arc<Session>;

impl Session {
    /// Open a fresh session.
    pub fn new(id: u64, owner: impl Into<String>) -> SessionRef {
        let owner = owner.into();
        Arc::new(Session {
            id,
            owner: owner.clone(),
            dag: Mutex::new(SkillDag::new()),
            current: AtomicU64::new(0),
            has_current: AtomicBool::new(false),
            executor: Mutex::new(Executor::new()),
            executing: AtomicBool::new(false),
            acl: Mutex::new(Shareable::owned_by(owner)),
            log: Mutex::new(Vec::new()),
        })
    }

    /// Grant a collaborator access.
    pub fn share_with(&self, user: impl Into<String>, permission: Permission) {
        self.acl.lock().grant(user, permission);
    }

    /// Revoke a collaborator's access.
    pub fn revoke(&self, user: &str) {
        self.acl.lock().revoke(user);
    }

    /// The permission a user holds.
    pub fn permission_of(&self, user: &str) -> Option<Permission> {
        self.acl.lock().permission_of(user)
    }

    /// Submit one skill request on behalf of `user`.
    ///
    /// Fails with [`CollabError::SessionBusy`] when another request is
    /// mid-flight, and with [`CollabError::PermissionDenied`] when the
    /// user cannot act in this session.
    pub fn submit(&self, user: &str, call: SkillCall) -> Result<SkillOutput> {
        let perm = self
            .permission_of(user)
            .ok_or_else(|| CollabError::PermissionDenied {
                user: user.to_string(),
                needed: "act".into(),
            })?;
        if !perm.can_act() {
            return Err(CollabError::PermissionDenied {
                user: user.to_string(),
                needed: "act".into(),
            });
        }
        // Session-level lock: atomically claim execution.
        if self.executing.swap(true, Ordering::AcqRel) {
            return Err(CollabError::SessionBusy { session: self.id });
        }
        let result = self.run_locked(user, call);
        self.executing.store(false, Ordering::Release);
        result
    }

    fn run_locked(&self, user: &str, call: SkillCall) -> Result<SkillOutput> {
        let gel = dc_gel::format_skill(&call);
        let node = {
            let mut dag = self.dag.lock();
            let inputs: Vec<NodeId> = match &call {
                SkillCall::UseDataset { name, .. } => match dag.resolve_name(name) {
                    Ok(n) => vec![n],
                    Err(_) => vec![],
                },
                SkillCall::Concat { other, .. } | SkillCall::Join { other, .. } => {
                    let second = dag.resolve_name(other)?;
                    let first = self.current_node().ok_or_else(|| {
                        CollabError::invalid("no current dataset for a two-input skill")
                    })?;
                    vec![first, second]
                }
                c if c.needs_input() => vec![self.current_node().ok_or_else(|| {
                    CollabError::invalid(format!("{} needs a dataset; load one first", c.name()))
                })?],
                _ => vec![],
            };
            dag.add(call, inputs)?
        };
        let out = {
            let mut ex = self.executor.lock();
            let dag = self.dag.lock();
            ENV.with(|env| ex.run(&dag, node, &mut env.borrow_mut()))?
        };
        self.current.store(node as u64, Ordering::Release);
        self.has_current.store(true, Ordering::Release);
        self.log.lock().push((user.to_string(), gel));
        Ok(out)
    }

    /// The node holding the current dataset.
    pub fn current_node(&self) -> Option<NodeId> {
        self.has_current
            .load(Ordering::Acquire)
            .then(|| self.current.load(Ordering::Acquire) as NodeId)
    }

    /// Bind a dataset name to the current node.
    pub fn name_current(&self, name: impl Into<String>) -> Result<()> {
        let node = self
            .current_node()
            .ok_or_else(|| CollabError::invalid("nothing to name yet"))?;
        self.dag.lock().bind_name(name, node)?;
        Ok(())
    }

    /// Snapshot of the session's DAG (for saving artifacts).
    pub fn dag_snapshot(&self) -> SkillDag {
        self.dag.lock().clone()
    }

    /// The synchronized request log.
    pub fn log(&self) -> Vec<(String, String)> {
        self.log.lock().clone()
    }
}

// The environment lives in thread-local storage for session execution so
// Session::submit keeps a simple signature; the platform facade installs
// the environment for the duration of a call.
thread_local! {
    static ENV: std::cell::RefCell<Env> = std::cell::RefCell::new(Env::new());
}

/// Run `f` with access to the session environment of the current thread.
pub fn with_env<R>(f: impl FnOnce(&mut Env) -> R) -> R {
    ENV.with(|env| f(&mut env.borrow_mut()))
}

/// Registry of sessions (the platform's server-side tracking).
#[derive(Debug, Default)]
pub struct SessionRegistry {
    sessions: Mutex<BTreeMap<u64, SessionRef>>,
    next_id: AtomicU64,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> SessionRegistry {
        SessionRegistry::default()
    }

    /// Open a session for `owner`.
    pub fn open(&self, owner: impl Into<String>) -> SessionRef {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let s = Session::new(id, owner);
        self.sessions.lock().insert(id, Arc::clone(&s));
        s
    }

    /// Look up a session.
    pub fn get(&self, id: u64) -> Result<SessionRef> {
        self.sessions
            .lock()
            .get(&id)
            .cloned()
            .ok_or(CollabError::SessionNotFound { id })
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Whether no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.sessions.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::Expr;

    fn seed_env() {
        with_env(|env| {
            *env = Env::new();
            env.add_file("d.csv", "x\n1\n2\n3\n4\n");
        });
    }

    #[test]
    fn linear_session_flow() {
        seed_env();
        let s = Session::new(1, "ann");
        s.submit(
            "ann",
            SkillCall::LoadFile {
                path: "d.csv".into(),
            },
        )
        .unwrap();
        let out = s
            .submit(
                "ann",
                SkillCall::KeepRows {
                    predicate: Expr::col("x").gt(Expr::lit(1i64)),
                },
            )
            .unwrap();
        assert_eq!(out.as_table().unwrap().num_rows(), 3);
        assert_eq!(s.log().len(), 2);
        assert_eq!(s.log()[1].0, "ann");
    }

    #[test]
    fn unshared_user_denied() {
        seed_env();
        let s = Session::new(1, "ann");
        let r = s.submit(
            "bob",
            SkillCall::LoadFile {
                path: "d.csv".into(),
            },
        );
        assert!(matches!(r, Err(CollabError::PermissionDenied { .. })));
    }

    #[test]
    fn viewer_cannot_act_editor_can() {
        seed_env();
        let s = Session::new(1, "ann");
        s.share_with("bob", Permission::View);
        assert!(matches!(
            s.submit(
                "bob",
                SkillCall::LoadFile {
                    path: "d.csv".into()
                }
            ),
            Err(CollabError::PermissionDenied { .. })
        ));
        s.share_with("bob", Permission::Edit);
        assert!(s
            .submit(
                "bob",
                SkillCall::LoadFile {
                    path: "d.csv".into()
                }
            )
            .is_ok());
        s.revoke("bob");
        assert!(s.permission_of("bob").is_none());
    }

    #[test]
    fn concurrent_requests_rejected() {
        use std::sync::atomic::AtomicUsize;
        seed_env();
        let s = Session::new(1, "ann");
        s.share_with("bob", Permission::Edit);
        s.submit(
            "ann",
            SkillCall::LoadFile {
                path: "d.csv".into(),
            },
        )
        .unwrap();
        // Claim the lock as if a long request were running; a second
        // submission must fail with the paper's message.
        s.executing.store(true, Ordering::Release);
        let busy = AtomicUsize::new(0);
        match s.submit("bob", SkillCall::Limit { n: 1 }) {
            Err(CollabError::SessionBusy { session }) => {
                assert_eq!(session, 1);
                busy.fetch_add(1, Ordering::Relaxed);
            }
            other => panic!("expected SessionBusy, got {other:?}"),
        }
        s.executing.store(false, Ordering::Release);
        assert!(s.submit("bob", SkillCall::Limit { n: 1 }).is_ok());
        assert_eq!(busy.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn named_datasets_enable_two_input_skills() {
        seed_env();
        let s = Session::new(1, "ann");
        s.submit(
            "ann",
            SkillCall::LoadFile {
                path: "d.csv".into(),
            },
        )
        .unwrap();
        s.name_current("first").unwrap();
        s.submit(
            "ann",
            SkillCall::LoadFile {
                path: "d.csv".into(),
            },
        )
        .unwrap();
        let out = s
            .submit(
                "ann",
                SkillCall::Concat {
                    other: "first".into(),
                    remove_duplicates: false,
                },
            )
            .unwrap();
        assert_eq!(out.as_table().unwrap().num_rows(), 8);
    }

    #[test]
    fn registry_assigns_ids() {
        let reg = SessionRegistry::new();
        let a = reg.open("ann");
        let b = reg.open("bob");
        assert_ne!(a.id, b.id);
        assert!(reg.get(a.id).is_ok());
        assert!(reg.get(999).is_err());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn transform_without_load_errors() {
        seed_env();
        let s = Session::new(1, "ann");
        assert!(s.submit("ann", SkillCall::Limit { n: 1 }).is_err());
    }
}
