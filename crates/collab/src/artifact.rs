//! Artifacts and recipes (§2.3).
//!
//! "Artifacts generally consist of a static representation of the object
//! the user cares about ... as well as instructions for how it was
//! produced" — the recipe, a serialized copy of the sliced skill DAG.
//! Refreshing an artifact re-executes its recipe; sharing exposes both
//! the representation and the recipe.

use dc_gel::format_skill;
use dc_skills::{Env, Executor, SkillCall, SkillDag, SkillOutput, SliceStats};

use crate::error::{CollabError, Result};

/// What kind of object an artifact holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    Chart,
    Dataset,
    Model,
    Report,
    Snapshot,
    /// Folders are artifacts too (§2.4: they "behave both as a container
    /// ... as well as an artifact themselves").
    Folder,
}

impl ArtifactKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Chart => "chart",
            ArtifactKind::Dataset => "dataset",
            ArtifactKind::Model => "model",
            ArtifactKind::Report => "report",
            ArtifactKind::Snapshot => "snapshot",
            ArtifactKind::Folder => "folder",
        }
    }

    /// Classify a skill output.
    pub fn of_output(out: &SkillOutput) -> ArtifactKind {
        match out {
            SkillOutput::Charts(_) => ArtifactKind::Chart,
            SkillOutput::Model(_) => ArtifactKind::Model,
            SkillOutput::Table(_) => ArtifactKind::Dataset,
            SkillOutput::Summaries(_) | SkillOutput::Text(_) => ArtifactKind::Report,
        }
    }
}

/// A saved artifact: static representation + recipe + provenance.
#[derive(Debug, Clone)]
pub struct Artifact {
    pub name: String,
    pub kind: ArtifactKind,
    pub owner: String,
    /// The sliced DAG that produces this artifact (§2.3's recipe).
    pub recipe: SkillDag,
    /// Target node within the recipe.
    pub target: dc_skills::NodeId,
    /// The current materialized output.
    pub output: SkillOutput,
    /// How much slicing shrank the exploratory DAG.
    pub slice_stats: SliceStats,
    /// Monotonic refresh counter ("versions" in the Figure 2 sidebar).
    pub version: u64,
}

impl Artifact {
    /// Save an artifact from a session DAG: slice to the target, execute,
    /// and package (§2.3: "when saving an artifact ... the system
    /// evaluates which steps in the DAG affect the final artifact").
    pub fn save(
        name: impl Into<String>,
        owner: impl Into<String>,
        dag: &SkillDag,
        target: dc_skills::NodeId,
        env: &mut Env,
    ) -> Result<Artifact> {
        let (sliced, stats) = dc_skills::slice(dag, target)?;
        let sliced_target = sliced
            .len()
            .checked_sub(1)
            .ok_or_else(|| CollabError::invalid("cannot save an artifact from an empty recipe"))?;
        let mut ex = Executor::new();
        let output = ex.run(&sliced, sliced_target, env)?;
        Ok(Artifact {
            name: name.into(),
            kind: ArtifactKind::of_output(&output),
            owner: owner.into(),
            recipe: sliced,
            target: sliced_target,
            output,
            slice_stats: stats,
            version: 1,
        })
    }

    /// The recipe as GEL text (what every recipient can read — §2.3:
    /// "every artifact is paired with a recipe").
    pub fn recipe_gel(&self) -> Vec<String> {
        self.recipe
            .nodes()
            .iter()
            .map(|n| format_skill(&n.call))
            .collect()
    }

    /// Refresh: re-run the recipe on current data ("updating artifacts on
    /// the latest data ... as simple as executing the skill DAG again").
    pub fn refresh(&mut self, env: &mut Env) -> Result<u64> {
        let mut ex = Executor::new();
        self.output = ex.run(&self.recipe, self.target, env)?;
        self.version += 1;
        Ok(self.version)
    }

    /// Live replay: execute step by step, invoking `observe` with each
    /// intermediate output ("a live replay of the steps can be performed,
    /// as if an expert was entering the steps for the first time").
    pub fn replay(
        &self,
        env: &mut Env,
        mut observe: impl FnMut(usize, &SkillCall, &SkillOutput),
    ) -> Result<()> {
        let mut ex = Executor::new();
        for node in self.recipe.nodes() {
            let out = ex.run(&self.recipe, node.id, env)?;
            observe(node.id, &node.call, &out);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_engine::Expr;

    fn env() -> Env {
        let mut env = Env::new();
        env.add_file("d.csv", "x,y\n1,10\n2,20\n3,30\n4,40\n5,50\n");
        env
    }

    fn exploratory_dag() -> (SkillDag, dc_skills::NodeId) {
        let mut dag = SkillDag::new();
        let load = dag
            .add(
                SkillCall::LoadFile {
                    path: "d.csv".into(),
                },
                vec![],
            )
            .unwrap();
        let _peek = dag.add(SkillCall::ShowHead { n: 2 }, vec![load]).unwrap();
        let _dead = dag
            .add(
                SkillCall::Sort {
                    keys: vec![("y".into(), false)],
                },
                vec![load],
            )
            .unwrap();
        let f = dag
            .add(
                SkillCall::KeepRows {
                    predicate: Expr::col("x").ge(Expr::lit(2i64)),
                },
                vec![load],
            )
            .unwrap();
        let lim = dag.add(SkillCall::Limit { n: 3 }, vec![f]).unwrap();
        (dag, lim)
    }

    #[test]
    fn save_slices_and_materializes() {
        let (dag, target) = exploratory_dag();
        let mut env = env();
        let a = Artifact::save("my-result", "ann", &dag, target, &mut env).unwrap();
        assert_eq!(a.kind, ArtifactKind::Dataset);
        assert_eq!(a.version, 1);
        assert!(a.slice_stats.dead_removed >= 1);
        assert!(a.slice_stats.final_nodes < a.slice_stats.original_nodes);
        let t = a.output.as_table().unwrap();
        assert_eq!(t.num_rows(), 3);
        // The recipe reads as GEL.
        let gel = a.recipe_gel();
        assert!(gel[0].starts_with("Load data from the file"));
        assert!(gel.iter().any(|g| g.contains("Keep the rows where")));
    }

    #[test]
    fn refresh_reexecutes_on_new_data() {
        let (dag, target) = exploratory_dag();
        let mut env = env();
        let mut a = Artifact::save("r", "ann", &dag, target, &mut env).unwrap();
        // Underlying file changes; refresh picks it up.
        env.add_file("d.csv", "x,y\n9,90\n");
        let v = a.refresh(&mut env).unwrap();
        assert_eq!(v, 2);
        assert_eq!(a.output.as_table().unwrap().num_rows(), 1);
    }

    #[test]
    fn replay_walks_each_step() {
        let (dag, target) = exploratory_dag();
        let mut env = env();
        let a = Artifact::save("r", "ann", &dag, target, &mut env).unwrap();
        let mut steps: Vec<String> = Vec::new();
        a.replay(&mut env, |_, call, out| {
            steps.push(format!("{}:{}", call.name(), out.kind()));
        })
        .unwrap();
        assert_eq!(steps.len(), a.recipe.len());
        assert!(steps[0].starts_with("LoadFile"));
    }

    #[test]
    fn chart_artifacts_classified() {
        let mut dag = SkillDag::new();
        let load = dag
            .add(
                SkillCall::LoadFile {
                    path: "d.csv".into(),
                },
                vec![],
            )
            .unwrap();
        let viz = dag
            .add(
                SkillCall::Visualize {
                    kpi: "x".into(),
                    by: vec![],
                },
                vec![load],
            )
            .unwrap();
        let mut env = env();
        let a = Artifact::save("c", "ann", &dag, viz, &mut env).unwrap();
        assert_eq!(a.kind, ArtifactKind::Chart);
    }
}
