//! # datachat — umbrella crate
//!
//! Re-exports every subsystem of the DataChat reproduction so examples and
//! integration tests can depend on one crate. See `datachat_core` for the
//! user-facing platform facade and `DESIGN.md` for the system inventory.

pub use datachat_core as core;
pub use dc_analyze as analyze;
pub use dc_collab as collab;
pub use dc_engine as engine;
pub use dc_gel as gel;
pub use dc_ml as ml;
pub use dc_nl as nl;
pub use dc_serve as serve;
pub use dc_skills as skills;
pub use dc_spider as spider;
pub use dc_sql as sql;
pub use dc_storage as storage;
pub use dc_viz as viz;
